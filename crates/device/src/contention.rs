//! The contention generator (CG).
//!
//! §6 of the paper: "CG is used as a stand-in for real-world background
//! workloads... tunable between 0% and 99% GPU contention". The paper
//! evaluates 0% and 50%. Under g% GPU contention the detector (a GPU
//! workload) effectively time-shares the GPU with the contender, so its
//! latency inflates by roughly `1 / (1 - g/100)`; CPU-side work (the
//! trackers, HoC/HOG extraction) is unaffected.

use rand::Rng;

/// A tunable GPU contention source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentionGenerator {
    /// GPU contention level in percent, `0.0..=99.0`.
    gpu_level_pct: f64,
}

impl ContentionGenerator {
    /// Creates a generator at the given GPU contention percentage.
    ///
    /// # Errors
    ///
    /// Returns the offending level if it is outside `[0, 99]` or not
    /// finite.
    pub fn try_new(gpu_level_pct: f64) -> Result<Self, f64> {
        if gpu_level_pct.is_finite() && (0.0..=99.0).contains(&gpu_level_pct) {
            Ok(Self { gpu_level_pct })
        } else {
            Err(gpu_level_pct)
        }
    }

    /// Creates a generator at the given GPU contention percentage.
    ///
    /// # Panics
    ///
    /// Panics if `gpu_level_pct` is outside `[0, 99]`. Use
    /// [`ContentionGenerator::try_new`] for a non-panicking constructor.
    pub fn new(gpu_level_pct: f64) -> Self {
        Self::try_new(gpu_level_pct)
            .unwrap_or_else(|pct| panic!("contention level {pct}% outside [0, 99]"))
    }

    /// No contention.
    pub fn idle() -> Self {
        Self::new(0.0)
    }

    /// The configured level in percent.
    pub fn gpu_level_pct(&self) -> f64 {
        self.gpu_level_pct
    }

    /// The mean slowdown factor applied to GPU ops.
    pub fn mean_gpu_slowdown(&self) -> f64 {
        1.0 / (1.0 - self.gpu_level_pct / 100.0)
    }

    /// Samples an instantaneous GPU slowdown factor.
    ///
    /// The contender's activity is bursty, so the instantaneous factor
    /// jitters around the mean: the op may land in a quiet window (close to
    /// 1x) or collide with a burst (worse than the mean). Zero contention
    /// always returns exactly 1.
    pub fn sample_gpu_slowdown(&self, rng: &mut impl Rng) -> f64 {
        if self.gpu_level_pct == 0.0 {
            return 1.0;
        }
        let mean = self.mean_gpu_slowdown();
        // Burstiness: mixture of a quiet window and a collision.
        let quiet_prob = (1.0 - self.gpu_level_pct / 100.0) * 0.5;
        if rng.gen::<f64>() < quiet_prob {
            1.0 + (mean - 1.0) * rng.gen_range(0.0..0.4)
        } else {
            mean * rng.gen_range(0.85..1.35)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn idle_contention_is_identity() {
        let cg = ContentionGenerator::idle();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(cg.sample_gpu_slowdown(&mut rng), 1.0);
        }
    }

    #[test]
    fn fifty_percent_roughly_doubles_gpu_time() {
        let cg = ContentionGenerator::new(50.0);
        assert!((cg.mean_gpu_slowdown() - 2.0).abs() < 1e-9);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| cg.sample_gpu_slowdown(&mut rng))
            .sum::<f64>()
            / n as f64;
        assert!(
            (1.6..2.4).contains(&mean),
            "sampled mean slowdown {mean} far from 2x"
        );
    }

    #[test]
    fn slowdown_never_below_one() {
        let cg = ContentionGenerator::new(80.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(cg.sample_gpu_slowdown(&mut rng) >= 1.0);
        }
    }

    #[test]
    fn higher_levels_mean_higher_slowdown() {
        assert!(
            ContentionGenerator::new(80.0).mean_gpu_slowdown()
                > ContentionGenerator::new(50.0).mean_gpu_slowdown()
        );
    }

    #[test]
    #[should_panic(expected = "outside [0, 99]")]
    fn one_hundred_percent_is_rejected() {
        let _ = ContentionGenerator::new(100.0);
    }

    #[test]
    fn try_new_rejects_bad_levels_without_panicking() {
        assert_eq!(ContentionGenerator::try_new(100.0), Err(100.0));
        assert_eq!(ContentionGenerator::try_new(-0.5), Err(-0.5));
        assert!(ContentionGenerator::try_new(f64::NAN).is_err());
        assert!(ContentionGenerator::try_new(0.0).is_ok());
        assert!(ContentionGenerator::try_new(99.0).is_ok());
    }

    #[test]
    fn mean_slowdown_is_monotone_in_load() {
        let mut prev = 0.0;
        for level in 0..=99 {
            let s = ContentionGenerator::new(level as f64).mean_gpu_slowdown();
            assert!(
                s > prev,
                "mean slowdown not strictly increasing at {level}%: {s} <= {prev}"
            );
            prev = s;
        }
        // And it is exactly the processor-sharing stretch 1/(1-g).
        assert!((ContentionGenerator::new(0.0).mean_gpu_slowdown() - 1.0).abs() < 1e-12);
        assert!((ContentionGenerator::new(50.0).mean_gpu_slowdown() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_slowdown_mean_is_monotone_in_load() {
        let mut prev = 0.0;
        for level in [0.0, 20.0, 40.0, 60.0, 80.0, 95.0] {
            let cg = ContentionGenerator::new(level);
            let mut rng = StdRng::seed_from_u64(11);
            let n = 20_000;
            let mean: f64 = (0..n)
                .map(|_| cg.sample_gpu_slowdown(&mut rng))
                .sum::<f64>()
                / n as f64;
            assert!(
                mean > prev,
                "sampled mean slowdown not increasing at {level}%: {mean} <= {prev}"
            );
            prev = mean;
        }
    }
}
