//! Per-stream SLO classes and stream specifications.

use lr_video::VideoSpec;

/// Service class of a stream: its latency SLO, its scheduling priority,
/// and whether the admission controller may degrade it under overload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SloClass {
    /// Frame-rate-critical (33.3 ms, i.e. 30 fps): highest priority,
    /// never degraded — admitted at full quality or not at all.
    Gold,
    /// Interactive (50 ms): may be degraded instead of rejected.
    Silver,
    /// Best-effort analytics (100 ms): lowest priority, degradable.
    Bronze,
}

impl SloClass {
    /// The per-frame latency SLO in milliseconds (a P95 target, as in
    /// the paper).
    pub fn slo_ms(self) -> f64 {
        match self {
            SloClass::Gold => 33.3,
            SloClass::Silver => 50.0,
            SloClass::Bronze => 100.0,
        }
    }

    /// The stream's frame-arrival period in milliseconds. The SLO *is*
    /// the frame interval — each frame must finish before the next one
    /// arrives (Gold is a 30 fps camera, Silver 20 fps, Bronze 10 fps) —
    /// so the dispatcher paces a stream to this period and a stream's
    /// steady-state GPU demand fraction is `gpu_ms_per_frame / slo_ms`,
    /// the same currency the admission controller books.
    pub fn frame_period_ms(self) -> f64 {
        self.slo_ms()
    }

    /// Dispatch priority (higher runs sooner when streams are tied).
    pub fn priority(self) -> u8 {
        match self {
            SloClass::Gold => 2,
            SloClass::Silver => 1,
            SloClass::Bronze => 0,
        }
    }

    /// Whether the admission controller may admit this stream in a
    /// degraded mode (tightened scheduler headroom: cheaper tracker
    /// branches, longer GoFs) instead of rejecting it.
    pub fn degradable(self) -> bool {
        !matches!(self, SloClass::Gold)
    }

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            SloClass::Gold => "gold",
            SloClass::Silver => "silver",
            SloClass::Bronze => "bronze",
        }
    }
}

/// One offered stream: a name, a playlist of videos, and an SLO class.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// Human-readable stream name (shows up in the report).
    pub name: String,
    /// The videos this stream plays, in order.
    pub videos: Vec<VideoSpec>,
    /// Service class.
    pub class: SloClass,
}

impl StreamSpec {
    /// A synthetic camera stream: one generated video of `num_frames`
    /// frames, deterministic in `id`.
    pub fn synthetic(id: u32, class: SloClass, num_frames: usize) -> Self {
        Self {
            name: format!("cam-{id:02}"),
            videos: vec![VideoSpec {
                id: 9_000 + id,
                seed: 0xCA3E_0000 + id as u64,
                width: 640.0,
                height: 480.0,
                num_frames,
            }],
            class,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_order_by_strictness() {
        assert!(SloClass::Gold.slo_ms() < SloClass::Silver.slo_ms());
        assert!(SloClass::Silver.slo_ms() < SloClass::Bronze.slo_ms());
        assert!(SloClass::Gold.priority() > SloClass::Bronze.priority());
        assert!(!SloClass::Gold.degradable());
        assert!(SloClass::Silver.degradable());
    }

    #[test]
    fn synthetic_streams_are_deterministic() {
        let a = StreamSpec::synthetic(3, SloClass::Silver, 64);
        let b = StreamSpec::synthetic(3, SloClass::Silver, 64);
        assert_eq!(a.videos[0].seed, b.videos[0].seed);
        assert_eq!(a.name, "cam-03");
    }
}
