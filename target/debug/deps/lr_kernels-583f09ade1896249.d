/root/repo/target/debug/deps/lr_kernels-583f09ade1896249.d: crates/kernels/src/lib.rs crates/kernels/src/adascale.rs crates/kernels/src/branch.rs crates/kernels/src/detector.rs crates/kernels/src/heavy.rs crates/kernels/src/latency.rs crates/kernels/src/mbek.rs crates/kernels/src/tracker.rs Cargo.toml

/root/repo/target/debug/deps/liblr_kernels-583f09ade1896249.rmeta: crates/kernels/src/lib.rs crates/kernels/src/adascale.rs crates/kernels/src/branch.rs crates/kernels/src/detector.rs crates/kernels/src/heavy.rs crates/kernels/src/latency.rs crates/kernels/src/mbek.rs crates/kernels/src/tracker.rs Cargo.toml

crates/kernels/src/lib.rs:
crates/kernels/src/adascale.rs:
crates/kernels/src/branch.rs:
crates/kernels/src/detector.rs:
crates/kernels/src/heavy.rs:
crates/kernels/src/latency.rs:
crates/kernels/src/mbek.rs:
crates/kernels/src/tracker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
