//! Integration tests over the substrate crates: the invariants the
//! scheduler's correctness silently depends on.

use lr_device::{DeviceKind, DeviceSim, OpUnit};
use lr_features::{FeatureKind, HEAVY_FEATURE_KINDS};
use lr_kernels::adascale::AdaScaleMs;
use lr_kernels::branch::{default_catalog, one_stage_catalog};
use lr_kernels::{Branch, DetectorConfig, DetectorFamily, DetectorSim, Mbek, TrackerKind};
use lr_video::{trace, Video, VideoSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn video(seed: u64, frames: usize) -> Video {
    Video::generate(VideoSpec {
        id: 0,
        seed,
        width: 640.0,
        height: 480.0,
        num_frames: frames,
    })
}

/// The whole experiment stack depends on branch keys being stable across
/// processes (preheating, switching bookkeeping, Figure 4/5 aggregation).
#[test]
fn branch_keys_are_stable_and_unique_across_catalogs() {
    let mut keys: Vec<u64> = default_catalog().iter().map(|b| b.key()).collect();
    keys.extend(one_stage_catalog().iter().map(|b| b.key()));
    let n = keys.len();
    keys.sort_unstable();
    keys.dedup();
    // One-stage catalog branches with the same knobs as frcnn ones share
    // keys on purpose (the key encodes knobs, not family) — but within
    // each catalog keys must be unique, and the canonical frcnn/one-stage
    // overlap is exactly the nprop=100 subset.
    assert!(n - keys.len() <= one_stage_catalog().len());
    // Spot-check a canonical key value so accidental reordering of the
    // key bit layout is caught.
    let b = Branch::tracked(448, 20, TrackerKind::Kcf, 8, 4);
    assert_eq!(
        b.key(),
        Branch::tracked(448, 20, TrackerKind::Kcf, 8, 4).key()
    );
}

/// The detector must degrade monotonically as the GoF ages under
/// tracking: the MBEK's per-frame output quality within a GoF cannot be
/// better at the end than at detection time (statistically).
#[test]
fn tracked_quality_decays_within_gof() {
    let v = video(101, 320);
    let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 1);
    let mut mbek = Mbek::new(DetectorFamily::FasterRcnn);
    mbek.set_branch(Branch::tracked(576, 100, TrackerKind::MedianFlow, 20, 4));
    let mut first_iou = 0.0f32;
    let mut last_iou = 0.0f32;
    let mut n = 0;
    for start in (0..300).step_by(20) {
        let r = mbek.run_gof(&v.frames[start..start + 20], &mut dev);
        let iou_of = |dets: &[lr_kernels::Detection], truth: &lr_video::FrameTruth| -> f32 {
            let mut total = 0.0;
            let mut count = 0;
            for d in dets {
                if let Some(id) = d.gt_id {
                    if let Some(o) = truth.objects.iter().find(|o| o.id == id) {
                        total += d.bbox.iou(&o.bbox);
                        count += 1;
                    }
                }
            }
            if count == 0 {
                return f32::NAN;
            }
            total / count as f32
        };
        let f = iou_of(&r.per_frame[0], &v.frames[start]);
        let l = iou_of(&r.per_frame[19], &v.frames[start + 19]);
        if f.is_finite() && l.is_finite() {
            first_iou += f;
            last_iou += l;
            n += 1;
        }
    }
    assert!(n > 3, "not enough GoFs with tracked objects");
    assert!(
        first_iou / n as f32 > last_iou / n as f32,
        "IoU should decay across the GoF: first {} last {}",
        first_iou / n as f32,
        last_iou / n as f32
    );
}

/// Feature extraction must be independent of extraction order and of the
/// service's cache state.
#[test]
fn feature_extraction_is_cache_oblivious() {
    let v = video(102, 16);
    let mut fresh = litereconfig::FeatureService::new();
    let mut warmed = litereconfig::FeatureService::new();
    // Warm the second service on other frames first.
    for i in 0..10 {
        let _ = warmed.raster(&v, i);
    }
    for kind in HEAVY_FEATURE_KINDS {
        if kind == FeatureKind::CPoP {
            continue;
        }
        let a = fresh.extract_heavy(kind, &v, 12, None);
        let b = warmed.extract_heavy(kind, &v, 12, None);
        assert_eq!(a, b, "{kind:?} differs with cache state");
    }
}

/// Charging order must not change totals: N ops of cost c advance the
/// clock by the sum of their returns regardless of interleaving.
#[test]
fn device_charges_are_additive() {
    let mut dev = DeviceSim::new(DeviceKind::AgxXavier, 30.0, 9);
    let mut total = 0.0;
    for i in 0..200 {
        let unit = if i % 3 == 0 { OpUnit::Cpu } else { OpUnit::Gpu };
        total += dev.charge(unit, (i % 7) as f64 + 0.5);
    }
    assert!((dev.now_ms() - total).abs() < 1e-6);
}

/// AdaScale-MS must react to content: on a high-clutter (small-object)
/// video it should spend more frames at high scales than on a sparse one.
#[test]
fn adascale_ms_scales_with_content() {
    // Find videos whose dominant clutter levels differ.
    let mut cluttered_video = None;
    let mut sparse_video = None;
    for seed in 200..260 {
        let v = video(seed, 240);
        let cluttered_frames = v
            .frames
            .iter()
            .filter(|f| f.regime.clutter == lr_video::ClutterLevel::Cluttered)
            .count();
        let frac = cluttered_frames as f32 / v.frames.len() as f32;
        if frac > 0.8 && cluttered_video.is_none() {
            cluttered_video = Some(v);
        } else if frac < 0.2 && sparse_video.is_none() {
            sparse_video = Some(v);
        }
        if cluttered_video.is_some() && sparse_video.is_some() {
            break;
        }
    }
    let (Some(cl), Some(sp)) = (cluttered_video, sparse_video) else {
        // Regime mixes are random; skip quietly if no clean pair showed up.
        return;
    };
    let mean_scale = |v: &Video| {
        let mut ms = AdaScaleMs::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mut total = 0u64;
        for f in &v.frames {
            let _ = ms.step(f, &mut rng);
            total += ms.current_scale() as u64;
        }
        total as f64 / v.frames.len() as f64
    };
    assert!(
        mean_scale(&cl) > mean_scale(&sp),
        "cluttered content should push AdaScale to higher scales"
    );
}

/// Trace export/import must round-trip through the detector: detections
/// on imported frames equal detections on originals (the full truth is
/// preserved, including the stream id driving persistent draws).
#[test]
fn trace_round_trip_preserves_detection_behavior() {
    let v = video(103, 30);
    let frames = trace::import_csv(&trace::export_csv(&v)).expect("round trip");
    let sim = DetectorSim::new(DetectorFamily::FasterRcnn);
    let cfg = DetectorConfig::new(448, 20);
    let mut rng_a = StdRng::seed_from_u64(5);
    let mut rng_b = StdRng::seed_from_u64(5);
    for (a, b) in v.frames.iter().zip(frames.iter()) {
        let da = sim.detect(a, cfg, &mut rng_a);
        let db = sim.detect(b, cfg, &mut rng_b);
        assert_eq!(da.detections.len(), db.detections.len());
        for (x, y) in da.detections.iter().zip(db.detections.iter()) {
            assert_eq!(x.class, y.class);
            assert!((x.bbox.x - y.bbox.x).abs() < 0.1);
        }
    }
}
