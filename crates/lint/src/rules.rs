//! The repo-specific invariant rules and the scanner that applies them
//! to one source file's token stream.
//!
//! Every rule protects an invariant the compiler cannot see:
//!
//! - **D1** — simulated latency comes from `DeviceSim`/profile models,
//!   never wall-clock time. `Instant::now`/`SystemTime` are banned
//!   outside the bench timing bins (`crates/bench/`), which measure
//!   *host* walltime on purpose.
//! - **D2** — no `HashMap`/`HashSet` in non-test code: iteration order
//!   is randomized per process, so a map that feeds results, reports, or
//!   serialized output is one refactor away from nondeterministic bytes.
//!   Use `BTreeMap`/`BTreeSet` or an explicit sort; pure-lookup sites
//!   may carry a `// lr-lint: allow(d2)` attestation.
//! - **D3** — no ambient randomness (`thread_rng`, `from_entropy`,
//!   `OsRng`): every random draw must flow from a plumbed seed or the
//!   run is unreproducible offline.
//! - **N1** — no `partial_cmp` in library code: float comparators must
//!   be NaN-total (`total_cmp`) so rankings and argmax never collapse to
//!   `Ordering::Equal` on a NaN and silently reorder.
//! - **P1** — `.unwrap()`/`.expect()` in non-test library code is
//!   inventoried and ratcheted downward; new panic sites need a typed
//!   error or an infallible restructuring.
//! - **O1** — no `println!`/`eprintln!`/`dbg!` in library crates: ad-hoc
//!   prints are invisible to the observability layer and pollute the
//!   bench artifacts' stdout. Diagnostics flow through `lr-obs` sinks;
//!   only the CLI surfaces (`crates/bench/`, `crates/lint/`,
//!   `examples/`) and the `lr-obs` sink layer itself may print.

use crate::lexer::{lex, Token, TokenKind};

/// Identifier of one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Wall-clock time outside the bench allowlist.
    D1,
    /// `HashMap`/`HashSet` in non-test code.
    D2,
    /// Ambient (non-seeded) randomness.
    D3,
    /// NaN-unsafe `partial_cmp`.
    N1,
    /// `.unwrap()` / `.expect()` inventory.
    P1,
    /// Print macros in library crates.
    O1,
}

/// All rules, in report order.
pub const ALL_RULES: [RuleId; 6] = [
    RuleId::D1,
    RuleId::D2,
    RuleId::D3,
    RuleId::N1,
    RuleId::P1,
    RuleId::O1,
];

impl RuleId {
    /// Canonical short name.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::D1 => "D1",
            RuleId::D2 => "D2",
            RuleId::D3 => "D3",
            RuleId::N1 => "N1",
            RuleId::P1 => "P1",
            RuleId::O1 => "O1",
        }
    }

    /// Parses a rule name, case-insensitively.
    pub fn parse(s: &str) -> Option<RuleId> {
        match s.trim().to_ascii_uppercase().as_str() {
            "D1" => Some(RuleId::D1),
            "D2" => Some(RuleId::D2),
            "D3" => Some(RuleId::D3),
            "N1" => Some(RuleId::N1),
            "P1" => Some(RuleId::P1),
            "O1" => Some(RuleId::O1),
            _ => None,
        }
    }

    /// One-line summary used in report headers.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::D1 => "wall-clock time outside the bench allowlist",
            RuleId::D2 => "HashMap/HashSet in non-test code",
            RuleId::D3 => "ambient randomness (thread_rng/from_entropy/OsRng)",
            RuleId::N1 => "NaN-unsafe partial_cmp",
            RuleId::P1 => "unwrap()/expect() in non-test library code",
            RuleId::O1 => "println!/eprintln!/dbg! in library crates",
        }
    }

    /// Full explanation with the invariant and the expected fix.
    pub fn explain(self) -> &'static str {
        match self {
            RuleId::D1 => {
                "D1: simulated latency must come only from DeviceSim / profile models.\n\
                 \n\
                 Instant::now and SystemTime read the host wall clock, which makes a run's\n\
                 output depend on machine load instead of the seeded simulation. The only\n\
                 legitimate users are the bench timing bins (crates/bench/), which measure\n\
                 host walltime on purpose and are allowlisted by path.\n\
                 \n\
                 Fix: charge virtual time through DeviceSim (charge / idle_until / now_ms)\n\
                 or take a clock value as an argument. There is no per-site suppression\n\
                 that makes wall-clock reads deterministic; move the code or the measurement."
            }
            RuleId::D2 => {
                "D2: no HashMap/HashSet in non-test code.\n\
                 \n\
                 std's hash maps randomize iteration order per process. Any map whose\n\
                 iteration feeds results, reports, or serialized output makes byte-identical\n\
                 reproduction (the LR_POOL_THREADS A/B contract) impossible; maps that are\n\
                 pure lookups today are one refactor away from being iterated.\n\
                 \n\
                 Fix: use BTreeMap/BTreeSet (all our keys are small and Ord), or collect\n\
                 and sort explicitly before anything order-sensitive. A site that is a pure\n\
                 lookup by construction may carry `// lr-lint: allow(d2)` on or above the\n\
                 line; suppressions are themselves counted and ratcheted."
            }
            RuleId::D3 => {
                "D3: no ambient randomness.\n\
                 \n\
                 thread_rng, from_entropy, and OsRng draw entropy from the environment, so\n\
                 two runs of the same configuration diverge. Every scheduler decision must\n\
                 be reproducible offline to be debuggable (ApproxDet/Virtuoso make the same\n\
                 point): all randomness flows from an explicit seed.\n\
                 \n\
                 Fix: plumb a seed (u64) to the construction site and use\n\
                 StdRng::seed_from_u64 or the splitmix64 helpers; derive per-stream seeds\n\
                 with a salt rather than drawing fresh entropy."
            }
            RuleId::N1 => {
                "N1: float comparators must be NaN-total.\n\
                 \n\
                 partial_cmp returns None on NaN; the usual `.unwrap_or(Equal)` fallback\n\
                 silently treats NaN as equal to everything, so one NaN reshuffles a sort\n\
                 (mAP rankings, branch argmax, salience order) without any error. total_cmp\n\
                 is a total order (IEEE 754 totalOrder) and costs the same.\n\
                 \n\
                 Fix: replace `a.partial_cmp(&b).unwrap_or(...)` with `a.total_cmp(&b)`;\n\
                 add a deterministic tie-break (e.g. `.then(i.cmp(&j))`) when sorting keyed\n\
                 items whose keys can collide."
            }
            RuleId::P1 => {
                "P1: unwrap()/expect() in non-test library code is inventoried.\n\
                 \n\
                 Panics on the serving hot path take down every co-scheduled stream, not\n\
                 just the offending one. The inventory is ratcheted: the committed baseline\n\
                 may only go down. Test code (#[cfg(test)] modules, #[test] fns, tests/ and\n\
                 benches/ directories) is exempt.\n\
                 \n\
                 Fix: restructure so the invariant is carried by types (e.g. compute the\n\
                 value once instead of re-deriving it behind an expect), return a typed\n\
                 error, or use infallible lookups. If a panic is genuinely the right\n\
                 behavior (corrupted internal state), keep it — the ratchet only requires\n\
                 that the total never grows."
            }
            RuleId::O1 => {
                "O1: no print macros in library crates.\n\
                 \n\
                 println!/eprintln!/print!/eprint!/dbg! in a library crate bypasses the\n\
                 observability layer: the output is invisible to trace analysis, interleaves\n\
                 nondeterministically under parallel stepping, and corrupts the stdout of\n\
                 bench binaries whose artifacts are byte-compared in CI. Diagnostics belong\n\
                 in lr-obs sinks (spans, decision records, metrics), which are deterministic\n\
                 and mergeable.\n\
                 \n\
                 Fix: record the fact through an ObsSink (span, counter, or decision field)\n\
                 or return it in a typed result. Only CLI surfaces print: the bench and lint\n\
                 binaries (crates/bench/, crates/lint/), the examples (examples/), and the\n\
                 lr-obs sink layer itself (crates/obs/). Test code is exempt as usual."
            }
        }
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule.
    pub rule: RuleId,
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The trimmed source line, for human-readable reports.
    pub excerpt: String,
}

/// Scan result for one file: findings plus the suppression census.
#[derive(Debug, Clone, Default)]
pub struct FileScan {
    /// Violations found (suppressed sites excluded).
    pub findings: Vec<Finding>,
    /// Number of `lr-lint: allow(<rule>)` directives per rule, in
    /// [`ALL_RULES`] order. Counted whether or not they suppressed
    /// anything, so stale suppressions still ratchet.
    pub allows: [usize; ALL_RULES.len()],
}

fn rule_index(rule: RuleId) -> usize {
    ALL_RULES.iter().position(|&r| r == rule).unwrap_or(0)
}

/// True for paths whose whole content is test/bench code.
fn path_is_test(path: &str) -> bool {
    path.split('/')
        .any(|seg| seg == "tests" || seg == "benches")
}

/// D1 allowlist: the bench harness measures host walltime on purpose.
fn path_allows_wall_clock(path: &str) -> bool {
    path.starts_with("crates/bench/")
}

/// O1 allowlist: CLI surfaces whose job is to print, plus the lr-obs
/// sink layer (the sanctioned place where diagnostics become text).
fn path_allows_print(path: &str) -> bool {
    path.starts_with("crates/bench/")
        || path.starts_with("crates/lint/")
        || path.starts_with("crates/obs/")
        || path.starts_with("examples/")
}

/// Scans one file's source text. `path` must be workspace-relative with
/// forward slashes; it drives the test/allowlist path checks.
pub fn scan_source(path: &str, src: &str) -> FileScan {
    let tokens = lex(src);
    let lines: Vec<&str> = src.lines().collect();
    let excerpt = |line: u32| -> String {
        lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    };

    let mut scan = FileScan::default();

    // Suppression census: `lr-lint: allow(d2, p1)` in a line comment
    // covers findings on its own line and the line below.
    let mut allow_at: Vec<(u32, RuleId)> = Vec::new();
    for t in &tokens {
        if let TokenKind::LineComment(text) = &t.kind {
            for rule in parse_allow_directive(text) {
                scan.allows[rule_index(rule)] += 1;
                allow_at.push((t.line, rule));
            }
        }
    }
    let allowed = |line: u32, rule: RuleId| -> bool {
        allow_at
            .iter()
            .any(|&(l, r)| r == rule && (l == line || l + 1 == line))
    };

    let whole_file_test = path_is_test(path);
    let in_test = test_mask(&tokens);
    let in_use = use_mask(&tokens);

    let mut report = |rule: RuleId, line: u32| {
        if !allowed(line, rule) {
            scan.findings.push(Finding {
                rule,
                file: path.to_string(),
                line,
                excerpt: excerpt(line),
            });
        }
    };

    // Significant (non-comment) tokens with their original indices, so
    // sequence rules (`Instant::now`, `.unwrap(`) are comment-tolerant.
    let sig: Vec<(usize, &Token)> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment(_)))
        .collect();

    for (k, &(idx, tok)) in sig.iter().enumerate() {
        if whole_file_test || in_test[idx] {
            continue;
        }
        let next = |ahead: usize| sig.get(k + ahead).map(|&(_, t)| t);
        match &tok.kind {
            TokenKind::Ident(name) => match name.as_str() {
                "SystemTime" if !path_allows_wall_clock(path) => report(RuleId::D1, tok.line),
                "Instant" if !path_allows_wall_clock(path) => {
                    let is_now = next(1).is_some_and(|t| t.is_punct(':'))
                        && next(2).is_some_and(|t| t.is_punct(':'))
                        && next(3).and_then(Token::ident) == Some("now");
                    if is_now {
                        report(RuleId::D1, tok.line);
                    }
                }
                "HashMap" | "HashSet" if !in_use[idx] => report(RuleId::D2, tok.line),
                "thread_rng" | "from_entropy" | "OsRng" => report(RuleId::D3, tok.line),
                "println" | "eprintln" | "print" | "eprint" | "dbg" if !path_allows_print(path) => {
                    if next(1).is_some_and(|t| t.is_punct('!')) {
                        report(RuleId::O1, tok.line);
                    }
                }
                "partial_cmp" => report(RuleId::N1, tok.line),
                "unwrap" | "expect" => {
                    let after_dot = k > 0 && sig[k - 1].1.is_punct('.');
                    let called = next(1).is_some_and(|t| t.is_punct('('));
                    if after_dot && called {
                        report(RuleId::P1, tok.line);
                    }
                }
                _ => {}
            },
            TokenKind::Punct(_) | TokenKind::LineComment(_) => {}
        }
    }

    scan
}

/// Extracts the rules named by a `lr-lint: allow(...)` directive. The
/// directive must lead the comment (only whitespace before it), so prose
/// that merely *mentions* the syntax — docs, this file — is not counted.
fn parse_allow_directive(comment: &str) -> Vec<RuleId> {
    let Some(rest) = comment.trim_start().strip_prefix("lr-lint:") else {
        return Vec::new();
    };
    let rest = rest.trim_start();
    let Some(args) = rest
        .strip_prefix("allow")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('('))
    else {
        return Vec::new();
    };
    let Some(end) = args.find(')') else {
        return Vec::new();
    };
    args[..end].split(',').filter_map(RuleId::parse).collect()
}

/// Marks every token inside a test item: a `#[test]`-like or
/// `#[cfg(test)]`-like attribute plus the item it introduces (to the
/// matching closing brace, or the first top-level semicolon).
fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let attr_start = i;
        let (attr_end, marking) = read_attribute(tokens, i + 1);
        if !marking {
            i = attr_end + 1;
            continue;
        }
        // Skip any further stacked attributes before the item itself.
        let mut j = attr_end + 1;
        while j < tokens.len()
            && tokens[j].is_punct('#')
            && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            let (e, _) = read_attribute(tokens, j + 1);
            j = e + 1;
        }
        // The item body: first `{ ... }` at depth 0, or a bare `;`.
        let mut depth = 0usize;
        let mut end = j;
        while end < tokens.len() {
            match tokens[end].kind {
                TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct('}') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        break;
                    }
                }
                TokenKind::Punct(';') if depth == 0 => break,
                _ => {}
            }
            end += 1;
        }
        let end = end.min(tokens.len() - 1);
        for m in mask.iter_mut().take(end + 1).skip(attr_start) {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// Reads an attribute starting at its `[` token; returns the index of
/// the matching `]` and whether the attribute marks test code
/// (`#[test]`, `#[cfg(test)]`, `#[cfg(all(test, ...))]` — but not
/// `#[cfg(not(test))]`).
fn read_attribute(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut idents: Vec<&str> = Vec::new();
    let mut j = open;
    while j < tokens.len() {
        match &tokens[j].kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokenKind::Ident(s) => idents.push(s),
            _ => {}
        }
        j += 1;
    }
    let has = |w: &str| idents.iter().any(|&s| s == w);
    let marking = idents.as_slice() == ["test"] || (has("cfg") && has("test") && !has("not"));
    (j.min(tokens.len().saturating_sub(1)), marking)
}

/// Marks tokens inside `use ...;` declarations, where naming `HashMap`
/// is inert (imports don't iterate anything).
fn use_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].ident() == Some("use") {
            while i < tokens.len() && !tokens[i].is_punct(';') {
                mask[i] = true;
                i += 1;
            }
        }
        i += 1;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(scan: &FileScan) -> Vec<(RuleId, u32)> {
        scan.findings.iter().map(|f| (f.rule, f.line)).collect()
    }

    #[test]
    fn d1_flags_instant_now_and_system_time() {
        let src = "fn f() { let t = Instant::now(); let s = SystemTime::now(); }";
        let scan = scan_source("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&scan), vec![(RuleId::D1, 1), (RuleId::D1, 1)]);
    }

    #[test]
    fn d1_ignores_bare_instant_type_mentions() {
        let src = "fn f(deadline: Instant) {}";
        assert!(scan_source("crates/core/src/x.rs", src).findings.is_empty());
    }

    #[test]
    fn d1_allowlists_bench_paths() {
        let src = "fn f() { let t = Instant::now(); }";
        assert!(scan_source("crates/bench/src/bin/t.rs", src)
            .findings
            .is_empty());
    }

    #[test]
    fn d2_flags_map_usage_but_not_imports() {
        let src =
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }";
        let scan = scan_source("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&scan), vec![(RuleId::D2, 2), (RuleId::D2, 2)]);
    }

    #[test]
    fn d2_suppression_on_same_line_and_above() {
        let src = "fn f() {\n  // lr-lint: allow(d2)\n  let m = HashMap::new();\n  let s = HashSet::new(); // lr-lint: allow(D2)\n}";
        let scan = scan_source("crates/core/src/x.rs", src);
        assert!(scan.findings.is_empty(), "{:?}", scan.findings);
        assert_eq!(scan.allows[1], 2);
    }

    #[test]
    fn suppression_does_not_leak_two_lines_down() {
        let src = "// lr-lint: allow(d2)\n\nfn f() { let m = HashMap::new(); }";
        let scan = scan_source("crates/core/src/x.rs", src);
        assert_eq!(scan.findings.len(), 1);
        assert_eq!(scan.allows[1], 1);
    }

    #[test]
    fn d3_flags_ambient_randomness() {
        let src = "fn f() { let mut rng = thread_rng(); let r = StdRng::from_entropy(); }";
        let scan = scan_source("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&scan), vec![(RuleId::D3, 1), (RuleId::D3, 1)]);
    }

    #[test]
    fn n1_flags_partial_cmp() {
        let src = "fn f(v: &mut [f32]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
        let scan = scan_source("crates/core/src/x.rs", src);
        // partial_cmp (N1) and the .unwrap() on it (P1).
        assert_eq!(rules_of(&scan), vec![(RuleId::N1, 1), (RuleId::P1, 1)]);
    }

    #[test]
    fn p1_counts_unwrap_and_expect_calls_only() {
        let src = "fn f(x: Option<u32>) -> u32 { x.expect(\"set\") + x.unwrap_or(0) }";
        let scan = scan_source("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&scan), vec![(RuleId::P1, 1)]);
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  use std::collections::HashMap;\n  #[test]\n  fn t() { let m = HashMap::new(); m.iter().next().unwrap(); }\n}";
        assert!(scan_source("crates/core/src/x.rs", src).findings.is_empty());
    }

    #[test]
    fn test_fn_attribute_exempts_only_that_fn() {
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn lib(x: Option<u32>) { x.unwrap(); }";
        let scan = scan_source("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&scan), vec![(RuleId::P1, 3)]);
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = "#[cfg(not(test))]\nfn lib(x: Option<u32>) { x.unwrap(); }";
        let scan = scan_source("crates/core/src/x.rs", src);
        assert_eq!(scan.findings.len(), 1);
    }

    #[test]
    fn tests_dirs_are_exempt_wholesale() {
        let src = "fn helper() { let m = HashMap::new(); m.len(); x.unwrap(); }";
        assert!(scan_source("crates/serve/tests/det.rs", src)
            .findings
            .is_empty());
        assert!(scan_source("crates/bench/benches/micro.rs", src)
            .findings
            .is_empty());
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = "fn f() { let s = \"Instant::now() HashMap partial_cmp\"; /* thread_rng */ }\n// SystemTime in prose";
        assert!(scan_source("crates/core/src/x.rs", src).findings.is_empty());
    }

    #[test]
    fn o1_flags_print_macros_in_library_code() {
        let src = "fn f() { println!(\"x\"); eprintln!(\"y\"); dbg!(1); print!(\"z\"); }";
        let scan = scan_source("crates/core/src/x.rs", src);
        assert_eq!(
            rules_of(&scan),
            vec![
                (RuleId::O1, 1),
                (RuleId::O1, 1),
                (RuleId::O1, 1),
                (RuleId::O1, 1)
            ]
        );
    }

    #[test]
    fn o1_ignores_non_macro_idents() {
        // A method or fn named `print` (no `!`) is not a print macro.
        let src = "fn f(w: &mut W) { w.print(); let dbg = 1; }";
        assert!(scan_source("crates/core/src/x.rs", src).findings.is_empty());
    }

    #[test]
    fn o1_allowlists_cli_surfaces_and_obs() {
        let src = "fn f() { println!(\"x\"); }";
        for path in [
            "crates/bench/src/bin/t.rs",
            "crates/lint/src/main.rs",
            "crates/obs/src/sink.rs",
            "examples/quickstart.rs",
        ] {
            assert!(scan_source(path, src).findings.is_empty(), "{path}");
        }
        assert_eq!(scan_source("crates/serve/src/x.rs", src).findings.len(), 1);
    }

    #[test]
    fn o1_exempts_test_code_and_honors_allow() {
        let src = "#[test]\nfn t() { println!(\"x\"); }\nfn lib() { println!(\"y\"); // lr-lint: allow(o1)\n}";
        let scan = scan_source("crates/core/src/x.rs", src);
        assert!(scan.findings.is_empty(), "{:?}", scan.findings);
        assert_eq!(scan.allows[5], 1);
    }

    #[test]
    fn excerpt_carries_the_trimmed_line() {
        let src = "fn f() {\n    let x = v.partial_cmp(&w);\n}";
        let scan = scan_source("crates/core/src/x.rs", src);
        assert_eq!(scan.findings[0].excerpt, "let x = v.partial_cmp(&w);");
        assert_eq!(scan.findings[0].line, 2);
    }

    #[test]
    fn allow_directive_parsing() {
        assert_eq!(
            parse_allow_directive(" lr-lint: allow(d2, P1)"),
            vec![RuleId::D2, RuleId::P1]
        );
        assert!(parse_allow_directive(" lr-lint: allow()").is_empty());
        assert!(parse_allow_directive(" unrelated comment").is_empty());
        assert!(parse_allow_directive(" lr-lint: deny(d2)").is_empty());
    }

    #[test]
    fn rule_parse_roundtrip() {
        for rule in ALL_RULES {
            assert_eq!(RuleId::parse(rule.name()), Some(rule));
            assert!(!rule.explain().is_empty());
            assert!(!rule.summary().is_empty());
        }
        assert_eq!(RuleId::parse("zz"), None);
    }
}
